// fim-mine: command-line closed frequent item set miner over FIMI or
// FIMB files, in the spirit of the original ista/carpenter command-line
// programs.
//
//   fim-mine [-a algorithm] [-s minsupp | -S percent] [-t threads] [-m] [-q]
//            [--kernel=NAME] [--stats[=text|json]] [--stats-out=PATH]
//            [--trace-out=PATH] [--perf-counters] [--profile[=PATH]]
//            input [output]
//
//   -a NAME   ista | carpenter-lists | carpenter-table | flat-cumulative |
//             fpclose | lcm | charm | transposed | cobbler (default: ista)
//   -s N      absolute minimum support            (default: 2)
//   -S P      relative minimum support in percent (overrides -s)
//   -t N      worker threads for ista / lcm; output is identical to the
//             sequential run                      (default: 1)
//   -m        report only maximal frequent item sets
//   -q        quiet: no stats on stderr
//   --kernel=NAME
//             pin the intersection-kernel tier (scalar | sse | avx2)
//             instead of auto-selecting by CPUID; same effect as the
//             FIM_KERNEL environment variable, but an unsupported name
//             is a hard error here rather than a fallback. Output is
//             bit-identical across tiers (see docs/PERFORMANCE.md).
//   --stats[=text|json]
//             emit an execution-statistics report (per-phase spans +
//             per-miner counters, see docs/OBSERVABILITY.md) after
//             mining; text (default) or JSON. Goes to stderr unless
//             --stats-out is given, so the result output is unchanged.
//   --stats-out=PATH
//             write the stats report to PATH instead of stderr
//   --trace-out=PATH
//             record a per-thread event timeline (driver phases plus one
//             lane per IsTa shard/merge/recode worker) and write it as
//             Chrome trace-event JSON to PATH — load in chrome://tracing
//             or https://ui.perfetto.dev
//   --perf-counters
//             measure hardware counters (cycles, instructions, LLC/L1d
//             and branch misses via perf_event_open) over the run and
//             per phase/shard, and add the `perf` section to the stats
//             report (implies --stats). Where the kernel denies the PMU
//             the run still succeeds and the section carries an explicit
//             unavailable reason plus the rusage fallback.
//   --profile[=PATH]
//             sampling self-profiler (SIGPROF + backtrace): collapsed
//             stacks (`fim-prof-v1`, flamegraph.pl-compatible) written
//             to PATH, or stderr without =PATH. Combine with --trace-out
//             to see the sample cadence as a "profiler" lane.
//   --mem-stats
//             collect the per-structure memory breakdown (prefix trees,
//             tid lists, matrices, the recoded database) and add the
//             `memory` section to the stats report (implies --stats).
//             Output-neutral like every other observability flag.
//   input     transaction file, FIMI text or FIMB binary (auto-detected)
//   output    result file; "-" or absent: stdout
//
// Output lines: the items of a set separated by spaces, followed by the
// absolute support in parentheses, e.g. "3 17 42 (57)". The mined output
// is bit-identical with and without --stats / --trace-out.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "api/miner.h"
#include "common/timer.h"
#include "kernels/intersect.h"
#include "data/binary_io.h"
#include "data/fimi_io.h"
#include "data/stats.h"
#include "obs/export.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "rules/derive.h"
#include "tool_flags.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: fim-mine [-a algorithm] [-s minsupp | -S percent] "
               "[-t threads] [-m] [-q] [--kernel=NAME] [--stats[=text|json]] "
               "[--stats-out=PATH] [--trace-out=PATH] [--perf-counters] "
               "[--profile[=PATH]] [--mem-stats] input [output]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fim;

  Algorithm algorithm = Algorithm::kIsta;
  Support min_support = 2;
  double percent = -1.0;
  unsigned num_threads = 1;
  bool maximal_only = false;
  bool quiet = false;
  tools::ObsFlags obs_flags;
  std::string input;
  std::string output = "-";

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "-a") == 0) {
      auto parsed = ParseAlgorithm(next_value());
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      algorithm = parsed.value();
    } else if (std::strcmp(arg, "-s") == 0) {
      min_support = static_cast<Support>(tools::ParseCount("-s", next_value()));
    } else if (std::strcmp(arg, "-S") == 0) {
      percent = std::atof(next_value());
    } else if (std::strcmp(arg, "-t") == 0) {
      const long long parsed = tools::ParseCount("-t", next_value());
      if (parsed < 1) {
        std::fprintf(stderr, "error: -t needs a thread count >= 1\n");
        return 2;
      }
      num_threads = static_cast<unsigned>(parsed);
    } else if (std::strcmp(arg, "-m") == 0) {
      maximal_only = true;
    } else if (std::strcmp(arg, "-q") == 0) {
      quiet = true;
    } else if (std::strncmp(arg, "--kernel=", 9) == 0) {
      const char* name = arg + 9;
      if (!kernels::ForceKernel(name)) {
        std::fprintf(stderr,
                     "error: --kernel=%s is unknown or not supported on this "
                     "CPU; available:",
                     name);
        for (const auto* kernel : kernels::AvailableKernels()) {
          std::fprintf(stderr, " %s", kernel->name);
        }
        std::fprintf(stderr, "\n");
        return 2;
      }
    } else if (obs_flags.Parse(arg)) {
      // one of --stats / --stats-out / --trace-out
    } else if (std::strcmp(arg, "-h") == 0 ||
               std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else if (positional == 0) {
      input = arg;
      ++positional;
    } else if (positional == 1) {
      output = arg;
      ++positional;
    } else {
      Usage();
      return 2;
    }
  }
  if (input.empty()) {
    Usage();
    return 2;
  }

  obs_flags.Finish();

  WallTimer total;
  CpuTimer total_cpu;
  obs::Trace trace_storage;
  obs::Trace* trace = obs_flags.WantStats() ? &trace_storage : nullptr;
  MinerStats miner_stats;
  MinerStats* stats = obs_flags.WantStats() ? &miner_stats : nullptr;
  std::unique_ptr<obs::Timeline> timeline;
  if (obs_flags.WantTrace()) timeline = std::make_unique<obs::Timeline>();
  tools::PerfSession perf_session;
  perf_session.Start(obs_flags, trace, timeline.get());
  tools::MemSession mem_session(obs_flags);

  obs::Span load_span(trace, "load");
  auto loaded = ReadDatabaseFile(input);
  load_span.End();
  if (!loaded.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const TransactionDatabase& db = loaded.value();
  if (percent >= 0.0) {
    min_support = static_cast<Support>(std::ceil(
        percent / 100.0 * static_cast<double>(db.NumTransactions())));
    if (min_support == 0) min_support = 1;
  }
  if (!quiet) {
    std::fprintf(stderr, "fim-mine: %s; algorithm %s, min support %u\n",
                 StatsToString(ComputeStats(db)).c_str(),
                 AlgorithmName(algorithm), min_support);
  }

  MinerOptions options;
  options.algorithm = algorithm;
  options.min_support = min_support;
  options.num_threads = num_threads;
  options.timeline = timeline.get();
  options.perf_domains = perf_session.domains();
  options.memory = mem_session.breakdown();

  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (output != "-") {
    file_out.open(output, std::ios::trunc);
    if (!file_out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   output.c_str());
      return 1;
    }
    out = &file_out;
  }

  WallTimer mining;
  std::size_t count = 0;
  Status status;
  auto print_set = [&](std::span<const ItemId> items, Support support) {
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i > 0) *out << ' ';
      *out << items[i];
    }
    *out << " (" << support << ")\n";
    ++count;
  };

  if (maximal_only) {
    auto closed = MineClosedCollect(db, options, stats, trace);
    if (!closed.ok()) {
      status = closed.status();
    } else {
      obs::Span write_span(trace, "write");
      for (const auto& set : FilterMaximal(std::move(closed).value())) {
        print_set(set.items, set.support);
      }
    }
  } else {
    status = MineClosed(db, options, print_set, stats, trace);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "mining failed: %s\n", status.ToString().c_str());
    return 1;
  }
  out->flush();
  if (!quiet) {
    std::fprintf(stderr,
                 "fim-mine: %zu %s item sets in %.3fs (%.3fs total)\n", count,
                 maximal_only ? "maximal" : "closed", mining.Seconds(),
                 total.Seconds());
  }

  // Stop the measurement layer (counters + profiler) before any export
  // touches the timeline the profiler may still be writing to.
  const obs::PerfReport* perf_report = perf_session.Finish();
  if (mem_session.breakdown() != nullptr) {
    // The tool owns the original database; the miners record only what
    // they build themselves.
    mem_session.breakdown()->Record(db.ApproxMemoryUsage());
  }
  const obs::MemoryReport* mem_report = mem_session.Finish();

  if (timeline != nullptr) {
    obs::TraceMeta meta;
    meta.tool = "fim-mine";
    meta.algorithm = AlgorithmName(algorithm);
    if (int rc = tools::EmitChromeTrace(obs_flags, *timeline, meta); rc != 0) {
      return rc;
    }
  }
  if (obs_flags.WantStats()) {
    obs::StatsReport report;
    report.tool = "fim-mine";
    report.algorithm = AlgorithmName(algorithm);
    report.min_support = min_support;
    report.num_threads = num_threads;
    report.num_sets = count;
    report.wall_seconds = total.Seconds();
    report.cpu_seconds = total_cpu.Seconds();
    report.peak_rss_bytes = PeakRss();
    report.miner = miner_stats;
    report.trace = &trace_storage;
    report.perf = perf_report;
    report.memory = mem_report;
    if (int rc = tools::EmitStatsReport(obs_flags, report); rc != 0) {
      return rc;
    }
  }
  return perf_session.EmitProfile(obs_flags);
}
