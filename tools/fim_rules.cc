// fim-rules: induce association rules from a FIMI transaction file via
// closed frequent item sets (mine closed sets, reconstruct supports,
// emit single-consequent rules).
//
//   fim-rules [-a algorithm] [-s minsupp | -S percent] [-c minconf]
//             [-k maxrules] input [output]
//
//   -a NAME   mining algorithm (default ista)
//   -s N      absolute minimum support         (default 2)
//   -S P      relative minimum support percent (overrides -s)
//   -c F      minimum confidence in [0,1]      (default 0.8)
//   -k N      print at most N rules, best lift first (default 100)
//   output    "-" or absent: stdout
//
// Output lines: "antecedent items -> consequent (supp, conf, lift)".

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "api/miner.h"
#include "common/timer.h"
#include "data/binary_io.h"
#include "data/fimi_io.h"
#include "data/stats.h"
#include "rules/rules.h"
#include "tool_flags.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: fim-rules [-a algorithm] [-s minsupp | -S percent] "
               "[-c minconf] [-k maxrules] input [output]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fim;

  Algorithm algorithm = Algorithm::kIsta;
  Support min_support = 2;
  double percent = -1.0;
  double min_confidence = 0.8;
  std::size_t max_rules = 100;
  std::string input;
  std::string output = "-";

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "-a") == 0) {
      auto parsed = ParseAlgorithm(next_value());
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 2;
      }
      algorithm = parsed.value();
    } else if (std::strcmp(arg, "-s") == 0) {
      min_support = static_cast<Support>(tools::ParseCount("-s", next_value()));
    } else if (std::strcmp(arg, "-S") == 0) {
      percent = std::atof(next_value());
    } else if (std::strcmp(arg, "-c") == 0) {
      min_confidence = std::atof(next_value());
    } else if (std::strcmp(arg, "-k") == 0) {
      max_rules = static_cast<std::size_t>(tools::ParseCount("-k", next_value()));
    } else if (std::strcmp(arg, "-h") == 0 ||
               std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else if (positional == 0) {
      input = arg;
      ++positional;
    } else if (positional == 1) {
      output = arg;
      ++positional;
    } else {
      Usage();
      return 2;
    }
  }
  if (input.empty()) {
    Usage();
    return 2;
  }

  auto loaded = ReadDatabaseFile(input);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const TransactionDatabase& db = loaded.value();
  if (percent >= 0.0) {
    min_support = static_cast<Support>(std::ceil(
        percent / 100.0 * static_cast<double>(db.NumTransactions())));
    if (min_support == 0) min_support = 1;
  }

  MinerOptions options;
  options.algorithm = algorithm;
  options.min_support = min_support;
  WallTimer timer;
  auto mined = MineClosedCollect(db, options);
  if (!mined.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  const std::size_t num_closed = mined.value().size();

  const ClosedSetIndex index(std::move(mined).value());
  RuleOptions rule_options;
  rule_options.min_confidence = min_confidence;
  std::vector<AssociationRule> rules =
      GenerateRules(index, db.NumTransactions(), rule_options);
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.support > b.support;
            });
  if (rules.size() > max_rules) rules.resize(max_rules);

  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (output != "-") {
    file_out.open(output, std::ios::trunc);
    if (!file_out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   output.c_str());
      return 1;
    }
    out = &file_out;
  }
  for (const auto& rule : rules) {
    for (std::size_t i = 0; i < rule.antecedent.size(); ++i) {
      if (i > 0) *out << ' ';
      *out << rule.antecedent[i];
    }
    *out << " -> " << rule.consequent.front() << " (" << rule.support
         << ", " << rule.confidence << ", " << rule.lift << ")\n";
  }
  out->flush();

  std::fprintf(stderr,
               "fim-rules: %s; %zu closed sets (smin %u), %zu rules "
               "(conf >= %.2f) in %.3fs\n",
               StatsToString(ComputeStats(db)).c_str(), num_closed,
               min_support, rules.size(), min_confidence, timer.Seconds());
  return 0;
}
