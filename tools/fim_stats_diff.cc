// fim-stats-diff: counter-by-counter comparison of two observability
// reports — either two fim-stats JSON reports (fim-mine/fim-stream/
// fim-verify --stats=json) or two bench result files (BENCH_*.json, the
// fim-bench output) — for use as a perf-regression gate in CI.
//
//   fim-stats-diff [--rel-tol=F] [--abs-tol=F] [--time]
//                  [--mem-rel-tol=F] [--mem-abs-tol=N]
//                  [--structure-only] baseline.json current.json
//
//   --rel-tol=F   allowed relative increase per counter (fraction, e.g.
//                 0.05 = +5%; default 0: any increase fails)
//   --abs-tol=F   allowed absolute increase per counter (default 0);
//                 both tolerances must be exceeded for a regression
//   --mem-rel-tol=F, --mem-abs-tol=N
//                 tolerances of the bytes-class metrics (peak_rss_bytes
//                 and the memory.* fields of --mem-stats reports /
//                 bench "mem" payloads). Defaults 0.25 and 1048576:
//                 allocator and RSS numbers jitter across runs and
//                 hosts, so they get a wider gate than the
//                 deterministic work counters. Both must be exceeded to
//                 fail; decreases are improvements.
//   --time        also gate the timing fields (wall/cpu seconds) —
//                 off by default because wall time is noisy
//   --structure-only
//                 only require the two files to have the same shape
//                 (same bench points, same counter key sets); skip the
//                 numeric comparison. For comparing runs at different
//                 scales or on different hardware.
//
// Both files must be of the same kind. A fim-stats report is one row of
// counters; a bench file contributes one row per executed point, matched
// across files by (algorithm, min_support) — the bench min_supports are
// fixed constants, so points line up across scales. `num_sets` is an
// output cardinality, not a cost: any difference fails regardless of
// tolerance. Other counters fail only when the current value exceeds the
// baseline by more than both tolerances; decreases are reported as
// improvements and never fail.
//
// Reports with a `perf` section (--perf-counters) additionally
// contribute perf.ipc / perf.llc_miss_rate / perf.branch_miss_rate —
// miss-rate increases gate like any cost counter, while perf.ipc is a
// higher-is-better metric, so a *decrease* beyond the tolerances is the
// regression. perf.cycles and perf.instructions are timing-class (gated
// only with --time: both scale with wall time and multiplexing). All
// perf.* metrics are host-dependent, so one side missing them (older
// baseline schema, PMU denied, null counters) is never a structure
// failure — they are simply not compared; non-finite values (NaN/Inf
// from a zero-division) are skipped too.
//
// Bytes-class metrics behave the same way: lower is better, absence on
// either side (older schema, run without --mem-stats, platform hiding
// RSS) is never a mismatch, and they gate under their own --mem-rel-tol
// / --mem-abs-tol pair instead of the counter tolerances.
//
// Exit code 0 = no regression; 1 = regression or structure mismatch
// (details on stderr); 2 = usage or parse error.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using fim::obs::JsonValue;

void Usage() {
  std::fprintf(stderr,
               "usage: fim-stats-diff [--rel-tol=F] [--abs-tol=F] [--time] "
               "[--mem-rel-tol=F] [--mem-abs-tol=N] "
               "[--structure-only] baseline.json current.json\n");
}

/// One comparable row: a named bag of numeric metrics. A stats report is
/// a single row; a bench file is one row per executed point.
using Row = std::map<std::string, double>;
using Rows = std::map<std::string, Row>;

/// Whether the metric is gated with --time only. The raw hardware
/// counts ride along: cycles track wall time and both scale with the
/// multiplexing correction, unlike the ratios derived from them.
bool IsTimingMetric(const std::string& name) {
  return name == "wall_seconds" || name == "cpu_seconds" ||
         name == "seconds" || name == "perf.cycles" ||
         name == "perf.instructions";
}

/// Bytes-class metrics: memory footprints (RSS, accounted breakdown
/// bytes). Lower is better; they gate under the --mem-* tolerances.
bool IsBytesMetric(const std::string& name) {
  return name == "peak_rss_bytes" || name.rfind("memory.", 0) == 0;
}

/// perf.* and bytes-class metrics are host-dependent (PMU access, RSS
/// visibility, schema age, runs without --mem-stats), so their absence
/// on either side is tolerated rather than a MISSING failure.
bool IsOptionalMetric(const std::string& name) {
  return name.rfind("perf.", 0) == 0 || IsBytesMetric(name);
}

/// Metrics where bigger is better; a *decrease* is the regression.
bool IsHigherBetter(const std::string& name) { return name == "perf.ipc"; }

/// Copies the bytes-class metrics out of a `memory` object into `row`
/// as memory.<name>. Handles both shapes: the stats report's memory
/// section and a bench point's "mem" payload. Null values (peak RSS on
/// platforms that hide it) are skipped — "not measured", never 0.
void ExtractMemoryMetrics(const JsonValue& memory, Row* row) {
  if (!memory.is_object()) return;
  for (const char* name :
       {"accounted_bytes", "high_water_bytes", "peak_rss_bytes"}) {
    const JsonValue* value = memory.Find(name);
    if (value != nullptr && value->kind() == JsonValue::Kind::kNumber) {
      (*row)[std::string("memory.") + name] = value->AsNumber();
    }
  }
}

/// Copies the comparable hardware-counter metrics out of a `perf`
/// object into `row` as perf.<name>. Handles both shapes: the stats
/// report (counters nested under "counters", guarded by "available")
/// and a flat bench-point object. Null and non-numeric values are
/// skipped — a null is "not measured", never 0.
void ExtractPerfMetrics(const JsonValue& perf, Row* row) {
  if (!perf.is_object()) return;
  const JsonValue* available = perf.Find("available");
  if (available != nullptr && !available->AsBool()) return;
  const JsonValue* counters = perf.Find("counters");
  const JsonValue& source =
      counters != nullptr && counters->is_object() ? *counters : perf;
  for (const char* name :
       {"cycles", "instructions", "ipc", "llc_miss_rate",
        "branch_miss_rate"}) {
    const JsonValue* value = source.Find(name);
    if (value != nullptr && value->kind() == JsonValue::Kind::kNumber) {
      (*row)[std::string("perf.") + name] = value->AsNumber();
    }
  }
}

/// Extracts the rows of a parsed report. Returns false (with a message
/// on stderr) when the document is neither a fim-stats report nor a
/// bench file.
bool ExtractRows(const JsonValue& doc, const std::string& label, Rows* rows) {
  if (!doc.is_object()) {
    std::fprintf(stderr, "%s: not a JSON object\n", label.c_str());
    return false;
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema != nullptr &&
      schema->AsString().rfind("fim-stats-", 0) == 0) {
    Row row;
    if (const JsonValue* counters = doc.Find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [name, value] : counters->AsObject()) {
        row[name] = value.AsNumber();
      }
    }
    if (const JsonValue* num_sets = doc.Find("num_sets")) {
      row["num_sets"] = num_sets->AsNumber();
    }
    if (const JsonValue* wall = doc.Find("wall_seconds")) {
      row["wall_seconds"] = wall->AsNumber();
    }
    if (const JsonValue* cpu = doc.Find("cpu_seconds")) {
      row["cpu_seconds"] = cpu->AsNumber();
    }
    if (const JsonValue* perf = doc.Find("perf")) {
      ExtractPerfMetrics(*perf, &row);
    }
    if (const JsonValue* rss = doc.Find("peak_rss_bytes");
        rss != nullptr && rss->kind() == JsonValue::Kind::kNumber &&
        rss->AsNumber() > 0.0) {
      row["peak_rss_bytes"] = rss->AsNumber();
    }
    if (const JsonValue* memory = doc.Find("memory")) {
      ExtractMemoryMetrics(*memory, &row);
    }
    (*rows)[""] = std::move(row);
    return true;
  }
  const JsonValue* points = doc.Find("points");
  if (doc.Find("bench") != nullptr && points != nullptr &&
      points->is_array()) {
    for (const JsonValue& point : points->AsArray()) {
      if (!point.is_object()) continue;
      const JsonValue* ran = point.Find("ran");
      if (ran != nullptr && !ran->AsBool()) continue;  // skipped point
      const JsonValue* algorithm = point.Find("algorithm");
      const JsonValue* min_support = point.Find("min_support");
      if (algorithm == nullptr || min_support == nullptr) {
        std::fprintf(stderr, "%s: bench point without algorithm/min_support\n",
                     label.c_str());
        return false;
      }
      std::ostringstream key;
      key << algorithm->AsString() << " @ smin "
          << static_cast<long long>(min_support->AsNumber());
      Row row;
      if (const JsonValue* counters = point.Find("counters");
          counters != nullptr && counters->is_object()) {
        for (const auto& [name, value] : counters->AsObject()) {
          row[name] = value.AsNumber();
        }
      }
      if (const JsonValue* num_sets = point.Find("num_sets")) {
        row["num_sets"] = num_sets->AsNumber();
      }
      if (const JsonValue* seconds = point.Find("seconds")) {
        row["seconds"] = seconds->AsNumber();
      }
      if (const JsonValue* cpu = point.Find("cpu_seconds")) {
        row["cpu_seconds"] = cpu->AsNumber();
      }
      if (const JsonValue* perf = point.Find("perf")) {
        ExtractPerfMetrics(*perf, &row);
      }
      if (const JsonValue* mem = point.Find("mem")) {
        ExtractMemoryMetrics(*mem, &row);
      }
      (*rows)[key.str()] = std::move(row);
    }
    return true;
  }
  std::fprintf(stderr,
               "%s: neither a fim-stats report (\"schema\") nor a bench "
               "file (\"bench\" + \"points\")\n",
               label.c_str());
  return false;
}

bool LoadRows(const std::string& path, Rows* rows) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = fim::obs::ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error parsing %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  return ExtractRows(parsed.value(), path, rows);
}

const char* RowName(const std::string& key) {
  return key.empty() ? "report" : key.c_str();
}

}  // namespace

int main(int argc, char** argv) {
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  double mem_rel_tol = 0.25;
  double mem_abs_tol = 1024.0 * 1024.0;
  bool gate_time = false;
  bool structure_only = false;
  std::string baseline_path;
  std::string current_path;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--rel-tol=", 10) == 0) {
      rel_tol = std::atof(arg + 10);
    } else if (std::strncmp(arg, "--abs-tol=", 10) == 0) {
      abs_tol = std::atof(arg + 10);
    } else if (std::strncmp(arg, "--mem-rel-tol=", 14) == 0) {
      mem_rel_tol = std::atof(arg + 14);
    } else if (std::strncmp(arg, "--mem-abs-tol=", 14) == 0) {
      mem_abs_tol = std::atof(arg + 14);
    } else if (std::strcmp(arg, "--time") == 0) {
      gate_time = true;
    } else if (std::strcmp(arg, "--structure-only") == 0) {
      structure_only = true;
    } else if (std::strcmp(arg, "-h") == 0 ||
               std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else if (positional == 0) {
      baseline_path = arg;
      ++positional;
    } else if (positional == 1) {
      current_path = arg;
      ++positional;
    } else {
      Usage();
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty() || rel_tol < 0.0 ||
      abs_tol < 0.0 || mem_rel_tol < 0.0 || mem_abs_tol < 0.0) {
    Usage();
    return 2;
  }

  Rows baseline;
  Rows current;
  if (!LoadRows(baseline_path, &baseline) ||
      !LoadRows(current_path, &current)) {
    return 2;
  }

  int regressions = 0;
  int improvements = 0;
  int compared = 0;

  // Structure first: both files must cover the same rows with the same
  // metric keys (timing metrics may legitimately be absent on platforms
  // without a CPU clock, so their absence on one side is tolerated).
  for (const auto& [key, row] : baseline) {
    auto it = current.find(key);
    if (it == current.end()) {
      std::fprintf(stderr, "MISSING: %s absent from %s\n", RowName(key),
                   current_path.c_str());
      ++regressions;
      continue;
    }
    for (const auto& [name, base_value] : row) {
      if (it->second.find(name) == it->second.end()) {
        if (IsTimingMetric(name) || IsOptionalMetric(name)) continue;
        std::fprintf(stderr, "MISSING: %s: counter %s absent from %s\n",
                     RowName(key), name.c_str(), current_path.c_str());
        ++regressions;
      }
    }
    for (const auto& [name, cur_value] : it->second) {
      if (row.find(name) == row.end() && !IsTimingMetric(name) &&
          !IsOptionalMetric(name)) {
        std::fprintf(stderr, "MISSING: %s: counter %s absent from %s\n",
                     RowName(key), name.c_str(), baseline_path.c_str());
        ++regressions;
      }
    }
  }
  for (const auto& [key, row] : current) {
    if (baseline.find(key) == baseline.end()) {
      std::fprintf(stderr, "MISSING: %s absent from %s\n", RowName(key),
                   baseline_path.c_str());
      ++regressions;
    }
  }

  if (!structure_only) {
    for (const auto& [key, base_row] : baseline) {
      auto row_it = current.find(key);
      if (row_it == current.end()) continue;
      for (const auto& [name, base_value] : base_row) {
        auto it = row_it->second.find(name);
        if (it == row_it->second.end()) continue;
        if (IsTimingMetric(name) && !gate_time) continue;
        const double cur_value = it->second;
        // A non-finite value (NaN ratio from a zero division, an Inf
        // from overflow) cannot be gated meaningfully; skip rather than
        // poison the comparison — every arithmetic test below would be
        // false for NaN, silently passing a broken metric.
        if (!std::isfinite(base_value) || !std::isfinite(cur_value)) {
          continue;
        }
        ++compared;
        if (name == "num_sets") {
          // Output cardinality: must match exactly, both directions.
          if (cur_value != base_value) {
            std::fprintf(stderr,
                         "REGRESSION: %s: num_sets %g -> %g (output "
                         "mismatch)\n",
                         RowName(key), base_value, cur_value);
            ++regressions;
          }
          continue;
        }
        // For higher-is-better metrics (perf.ipc) the harmful direction
        // flips: the gated quantity is the decrease.
        const double harm = IsHigherBetter(name) ? base_value - cur_value
                                                 : cur_value - base_value;
        if (harm <= 0.0) {
          if (harm < 0.0) ++improvements;
          continue;
        }
        const double rel =
            base_value > 0.0 ? harm / base_value
                             : std::numeric_limits<double>::infinity();
        // Bytes-class metrics jitter with the allocator and the host, so
        // they gate under their own (wider) tolerance pair.
        const double use_rel = IsBytesMetric(name) ? mem_rel_tol : rel_tol;
        const double use_abs = IsBytesMetric(name) ? mem_abs_tol : abs_tol;
        if (harm > use_abs && rel > use_rel) {
          std::fprintf(stderr,
                       "REGRESSION: %s: %s %g -> %g (%s%.2f%%, rel-tol "
                       "%.2f%%, abs-tol %g)\n",
                       RowName(key), name.c_str(), base_value, cur_value,
                       IsHigherBetter(name) ? "-" : "+", 100.0 * rel,
                       100.0 * use_rel, use_abs);
          ++regressions;
        }
      }
    }
  }

  std::fprintf(stderr,
               "fim-stats-diff: %zu row(s), %d metric(s) compared, %d "
               "improvement(s), %d regression(s)%s\n",
               baseline.size(), compared, improvements, regressions,
               structure_only ? " [structure only]" : "");
  return regressions > 0 ? 1 : 0;
}
