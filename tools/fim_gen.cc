// fim-gen: generate the synthetic evaluation data sets (or a generic
// market-basket / expression-matrix workload) to files, so that fim-mine
// and external tools can be run on reproducible data.
//
//   fim-gen [-p profile] [-c scale] [-r seed] [-b] output
//
//   -p NAME   yeast | ncbi60 | thrombin | webview  (FIMI output), or
//             basket (FIMI), or expression (matrix TSV)   (default yeast)
//   -c F      profile scale factor in (0, 1]               (default 0.25)
//   -r SEED   RNG seed                                     (default 42)
//   -b        write the compact FIMB binary format instead of FIMI text
//   output    file to write

#include <cstdio>
#include <cstring>
#include <string>

#include "data/expression.h"
#include "data/binary_io.h"
#include "data/fimi_io.h"
#include "data/generators.h"
#include "data/matrix_io.h"
#include "data/profiles.h"
#include "data/stats.h"
#include "tool_flags.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: fim-gen [-p yeast|ncbi60|thrombin|webview|basket|"
               "expression] [-c scale] [-r seed] [-b] output\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fim;

  std::string profile = "yeast";
  double scale = 0.25;
  uint64_t seed = 42;
  bool binary = false;
  std::string output;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "-p") == 0) {
      profile = next_value();
    } else if (std::strcmp(arg, "-c") == 0) {
      scale = std::atof(next_value());
    } else if (std::strcmp(arg, "-r") == 0) {
      seed = static_cast<uint64_t>(tools::ParseCount("-r", next_value()));
    } else if (std::strcmp(arg, "-b") == 0) {
      binary = true;
    } else if (std::strcmp(arg, "-h") == 0 ||
               std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else if (output.empty()) {
      output = arg;
    } else {
      Usage();
      return 2;
    }
  }
  if (output.empty() || scale <= 0.0) {
    Usage();
    return 2;
  }

  if (profile == "expression") {
    ExpressionConfig config;
    config.num_genes = static_cast<std::size_t>(800 * scale) + 16;
    config.num_conditions = 120;
    config.seed = seed;
    const ExpressionMatrix matrix = GenerateExpression(config);
    Status status = WriteExpressionMatrixFile(matrix, output);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "fim-gen: wrote %zu x %zu expression matrix to %s\n",
                 matrix.num_genes(), matrix.num_conditions(),
                 output.c_str());
    return 0;
  }

  TransactionDatabase db;
  if (profile == "yeast") {
    db = MakeYeastLike(scale, seed);
  } else if (profile == "ncbi60") {
    db = MakeNcbi60Like(scale, seed);
  } else if (profile == "thrombin") {
    db = MakeThrombinLike(scale, seed);
  } else if (profile == "webview") {
    db = MakeWebviewLike(scale, seed);
  } else if (profile == "basket") {
    MarketBasketConfig config;
    config.num_items = static_cast<std::size_t>(1000 * scale) + 16;
    config.num_transactions = static_cast<std::size_t>(10000 * scale) + 16;
    config.seed = seed;
    db = GenerateMarketBasket(config);
  } else {
    Usage();
    return 2;
  }

  Status status =
      binary ? WriteBinaryFile(db, output) : WriteFimiFile(db, output);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "fim-gen: wrote %s (%s) to %s\n", profile.c_str(),
               StatsToString(ComputeStats(db)).c_str(), output.c_str());
  return 0;
}
