// fim-verify: check a closed-set result file against a FIMI transaction
// file — soundness by definition (support correct, closed, frequent) and
// completeness against this library's reference miner. Intended for
// validating external miner implementations (FIMI-contest style).
//
//   fim-verify [-s minsupp] [--stats[=text|json]] [--stats-out=PATH]
//              [--trace-out=PATH] [--perf-counters] [--mem-stats]
//              [--profile[=PATH]] data.fimi result.txt
//   fim-verify --self-check [-s minsupp] data.fimi
//
// --stats emits the reference miner's execution-statistics report (see
// docs/OBSERVABILITY.md) on stderr — or to PATH with --stats-out — after
// verification; --trace-out additionally records the reference run's
// event timeline as Chrome trace-event JSON. --perf-counters measures
// hardware counters over the reference run (perf section in the stats
// report; explicit unavailable reason + rusage fallback where the PMU is
// denied); --mem-stats collects the reference run's per-structure memory
// breakdown (memory section); --profile[=PATH] runs the sampling
// self-profiler and writes fim-prof-v1 collapsed stacks. The verdict and
// exit code are unaffected by any of them (only an unwritable output
// path is an error).
//
// --self-check feeds the database through the library's core data
// structures (IsTa prefix tree, Carpenter occurrence matrix and duplicate
// repository) and runs their structural-invariant validators — the same
// checks FIM_DCHECK wires into debug builds, on demand in any build.
//
// Exit code 0 = result is exactly the closed frequent item sets (or all
// self-checks passed); 1 = verification failed (details on stderr);
// 2 = usage error.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/miner.h"
#include "carpenter/carpenter.h"
#include "carpenter/repository.h"
#include "common/timer.h"
#include "data/binary_io.h"
#include "data/fimi_io.h"
#include "data/recode.h"
#include "data/result_io.h"
#include "ista/prefix_tree.h"
#include "obs/export.h"
#include "obs/timeline.h"
#include "tool_flags.h"
#include "verify/closedness.h"
#include "verify/compare.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: fim-verify [-s minsupp] [--stats[=text|json]] "
               "[--stats-out=PATH] [--trace-out=PATH] [--perf-counters] "
               "[--mem-stats] [--profile[=PATH]] data.fimi result\n"
               "       fim-verify --self-check [-s minsupp] data.fimi\n");
}

// Runs the structural-invariant validators of the core data structures
// over `db`. Returns the process exit code.
int RunSelfCheck(const fim::TransactionDatabase& db,
                 fim::Support min_support) {
  using namespace fim;

  // IsTa prefix tree: feed every transaction (frequency-ascending codes,
  // as MineClosedIsta does) and validate after the final insertion.
  const Recoding recoding =
      ComputeRecoding(db, ItemOrder::kFrequencyAscending, 1);
  const TransactionDatabase coded =
      ApplyRecoding(db, recoding, TransactionOrder::kNone);
  IstaPrefixTree tree(coded.NumItems());
  for (const auto& transaction : coded.transactions()) {
    tree.AddTransaction(transaction);
  }
  Status status = tree.ValidateInvariants();
  if (!status.ok()) {
    std::fprintf(stderr, "SELF-CHECK FAILURE (prefix tree): %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "fim-verify: prefix tree OK (%zu nodes, %zu steps)\n",
               tree.NodeCount(), tree.StepCount());

  // Carpenter occurrence matrix (Table 1).
  const std::vector<Support> matrix = BuildCarpenterMatrix(coded);
  status = ValidateCarpenterMatrix(coded, matrix);
  if (!status.ok()) {
    std::fprintf(stderr, "SELF-CHECK FAILURE (carpenter matrix): %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "fim-verify: carpenter matrix OK (%zu x %zu)\n",
               coded.NumTransactions(), coded.NumItems());

  // Duplicate repository: store every mined closed set, then validate.
  MinerOptions options;
  options.min_support = min_support;
  auto mined = MineClosedCollect(db, options);
  if (!mined.ok()) {
    std::fprintf(stderr, "reference mining failed: %s\n",
                 mined.status().ToString().c_str());
    return 1;
  }
  ClosedSetRepository repo(db.NumItems());
  for (const auto& set : mined.value()) {
    if (!set.items.empty()) repo.InsertIfAbsent(set.items);
  }
  status = repo.ValidateInvariants();
  if (!status.ok()) {
    std::fprintf(stderr, "SELF-CHECK FAILURE (repository): %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "fim-verify: repository OK (%zu sets, %zu nodes)\n",
               repo.size(), repo.NodeCount());
  std::fprintf(stderr, "fim-verify: self-check OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fim;

  Support min_support = 2;
  std::string data_path;
  std::string result_path;
  bool self_check = false;
  tools::ObsFlags obs_flags;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--self-check") == 0) {
      self_check = true;
    } else if (obs_flags.Parse(arg)) {
      // one of --stats / --stats-out / --trace-out
    } else if (std::strcmp(arg, "-s") == 0) {
      if (i + 1 >= argc) {
        Usage();
        return 2;
      }
      min_support = static_cast<Support>(tools::ParseCount("-s", argv[++i]));
    } else if (std::strcmp(arg, "-h") == 0 ||
               std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else if (positional == 0) {
      data_path = arg;
      ++positional;
    } else if (positional == 1) {
      result_path = arg;
      ++positional;
    } else {
      Usage();
      return 2;
    }
  }
  if (data_path.empty() || (result_path.empty() && !self_check) ||
      (self_check && !result_path.empty())) {
    Usage();
    return 2;
  }
  obs_flags.Finish();

  auto db = ReadDatabaseFile(data_path);
  if (!db.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", data_path.c_str(),
                 db.status().ToString().c_str());
    return 1;
  }
  if (self_check) return RunSelfCheck(db.value(), min_support);
  auto claimed = ReadClosedSetsFile(result_path);
  if (!claimed.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", result_path.c_str(),
                 claimed.status().ToString().c_str());
    return 1;
  }

  // Soundness: every claimed set is frequent, closed, and has the
  // claimed support.
  Status sound = VerifyClosedSets(db.value(), claimed.value(), min_support);
  if (!sound.ok()) {
    std::fprintf(stderr, "SOUNDNESS FAILURE: %s\n",
                 sound.ToString().c_str());
    return 1;
  }

  // Completeness: compare against the reference miner.
  MinerOptions options;
  options.min_support = min_support;
  const bool want_stats = obs_flags.WantStats();
  std::unique_ptr<obs::Timeline> timeline;
  if (obs_flags.WantTrace()) timeline = std::make_unique<obs::Timeline>();
  options.timeline = timeline.get();
  WallTimer mine_wall;
  CpuTimer mine_cpu;
  MinerStats miner_stats;
  obs::Trace trace;
  tools::PerfSession perf_session;
  perf_session.Start(obs_flags, want_stats ? &trace : nullptr,
                     timeline.get());
  options.perf_domains = perf_session.domains();
  tools::MemSession mem_session(obs_flags);
  options.memory = mem_session.breakdown();
  auto expected = MineClosedCollect(db.value(), options,
                                    want_stats ? &miner_stats : nullptr,
                                    want_stats ? &trace : nullptr);
  if (!expected.ok()) {
    std::fprintf(stderr, "reference mining failed: %s\n",
                 expected.status().ToString().c_str());
    return 1;
  }
  // Stop the measurement layer (counters + profiler) before any export
  // touches the timeline the profiler may still be writing to.
  const obs::PerfReport* perf_report = perf_session.Finish();
  if (mem_session.breakdown() != nullptr) {
    // The tool owns the original database; the reference miner records
    // only what it builds itself.
    mem_session.breakdown()->Record(db.value().ApproxMemoryUsage());
  }
  const obs::MemoryReport* mem_report = mem_session.Finish();
  if (timeline != nullptr) {
    obs::TraceMeta meta;
    meta.tool = "fim-verify";
    meta.algorithm = AlgorithmName(options.algorithm);
    if (int rc = tools::EmitChromeTrace(obs_flags, *timeline, meta); rc != 0) {
      return rc;
    }
  }
  if (want_stats) {
    obs::StatsReport report;
    report.tool = "fim-verify";
    report.algorithm = AlgorithmName(options.algorithm);
    report.min_support = min_support;
    report.num_threads = options.num_threads;
    report.num_sets = expected.value().size();
    report.wall_seconds = mine_wall.Seconds();
    report.cpu_seconds = mine_cpu.Seconds();
    report.peak_rss_bytes = PeakRss();
    report.miner = miner_stats;
    report.trace = &trace;
    report.perf = perf_report;
    report.memory = mem_report;
    if (int rc = tools::EmitStatsReport(obs_flags, report); rc != 0) {
      return rc;
    }
  }
  if (int rc = perf_session.EmitProfile(obs_flags); rc != 0) return rc;
  if (!SameResults(expected.value(), claimed.value())) {
    std::fprintf(stderr, "COMPLETENESS FAILURE:\n%s",
                 DiffResults(expected.value(), claimed.value(), 20).c_str());
    return 1;
  }
  std::fprintf(stderr,
               "fim-verify: OK — %zu closed sets match exactly (smin %u)\n",
               claimed.value().size(), min_support);
  return 0;
}
