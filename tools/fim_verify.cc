// fim-verify: check a closed-set result file against a FIMI transaction
// file — soundness by definition (support correct, closed, frequent) and
// completeness against this library's reference miner. Intended for
// validating external miner implementations (FIMI-contest style).
//
//   fim-verify [-s minsupp] data.fimi result.txt
//
// Exit code 0 = result is exactly the closed frequent item sets;
// 1 = verification failed (details on stderr); 2 = usage error.

#include <cstdio>
#include <cstring>
#include <string>

#include "api/miner.h"
#include "data/binary_io.h"
#include "data/fimi_io.h"
#include "data/result_io.h"
#include "verify/closedness.h"
#include "verify/compare.h"

namespace {

void Usage() {
  std::fprintf(stderr, "usage: fim-verify [-s minsupp] data.fimi result\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fim;

  Support min_support = 2;
  std::string data_path;
  std::string result_path;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "-s") == 0) {
      if (i + 1 >= argc) {
        Usage();
        return 2;
      }
      min_support = static_cast<Support>(std::atoll(argv[++i]));
    } else if (std::strcmp(arg, "-h") == 0 ||
               std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else if (positional == 0) {
      data_path = arg;
      ++positional;
    } else if (positional == 1) {
      result_path = arg;
      ++positional;
    } else {
      Usage();
      return 2;
    }
  }
  if (data_path.empty() || result_path.empty()) {
    Usage();
    return 2;
  }

  auto db = ReadDatabaseFile(data_path);
  if (!db.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", data_path.c_str(),
                 db.status().ToString().c_str());
    return 1;
  }
  auto claimed = ReadClosedSetsFile(result_path);
  if (!claimed.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", result_path.c_str(),
                 claimed.status().ToString().c_str());
    return 1;
  }

  // Soundness: every claimed set is frequent, closed, and has the
  // claimed support.
  Status sound = VerifyClosedSets(db.value(), claimed.value(), min_support);
  if (!sound.ok()) {
    std::fprintf(stderr, "SOUNDNESS FAILURE: %s\n",
                 sound.ToString().c_str());
    return 1;
  }

  // Completeness: compare against the reference miner.
  MinerOptions options;
  options.min_support = min_support;
  auto expected = MineClosedCollect(db.value(), options);
  if (!expected.ok()) {
    std::fprintf(stderr, "reference mining failed: %s\n",
                 expected.status().ToString().c_str());
    return 1;
  }
  if (!SameResults(expected.value(), claimed.value())) {
    std::fprintf(stderr, "COMPLETENESS FAILURE:\n%s",
                 DiffResults(expected.value(), claimed.value(), 20).c_str());
    return 1;
  }
  std::fprintf(stderr,
               "fim-verify: OK — %zu closed sets match exactly (smin %u)\n",
               claimed.value().size(), min_support);
  return 0;
}
