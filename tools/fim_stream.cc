// fim-stream: continuous closed-item-set mining over a transaction
// stream (src/stream/). Replays a FIMI file — or reads stdin line by
// line — into a StreamMiner, answering exact snapshot queries along the
// way and optionally checkpointing/resuming the miner state.
//
//   fim-stream [-s minsupp] [--pane=N --window=W] [--query-every=N]
//              [--checkpoint=PATH] [--checkpoint-every=N] [--resume=PATH]
//              [--max-items=N] [-q] [--stats[=text|json]]
//              [--stats-out=PATH] [--trace-out=PATH] [--perf-counters]
//              [--mem-stats] [--profile[=PATH]] [--sample-every=MS]
//              [--sample-out=PATH] [input [output]]
//
//   -s N        minimum support of every snapshot query (default: 2)
//   --pane=N    transactions per tumbling pane (sliding-window mode;
//               requires --window)
//   --window=W  number of live panes a snapshot covers (requires --pane).
//               Without --pane/--window the miner runs in landmark mode:
//               every snapshot covers the whole stream so far.
//   --query-every=N
//               emit an intermediate snapshot after every N ingested
//               transactions, preceded by a "# snapshot tx=T sets=S"
//               header line (T counts from the start of the stream, so a
//               resumed run emits the same headers at the same points)
//   --checkpoint=PATH
//               write a fim-stream-v1 checkpoint of the full miner state
//               to PATH after the input is exhausted
//   --checkpoint-every=N
//               additionally checkpoint after every N transactions
//               (atomic: written to PATH.tmp, then renamed)
//   --resume=PATH
//               restore the miner from a checkpoint before ingesting;
//               mode and item capacity come from the checkpoint and
//               override --pane/--window/--max-items
//   --max-items=N
//               item-universe capacity; ingesting an item id >= N is an
//               error (default: 1048576)
//   -q          quiet: no progress line on stderr
//   --stats[=text|json], --stats-out=PATH
//               emit an execution-statistics report including the
//               stream.* counters and the miner's phase spans (rotate,
//               query, checkpoint; see docs/OBSERVABILITY.md)
//   --trace-out=PATH
//               record the miner's event timeline (ingest rotations,
//               seals, query sub-phases, checkpoints, plus the sampler's
//               lane) and write Chrome trace-event JSON to PATH
//   --perf-counters
//               measure hardware counters over the whole run and per
//               phase span, adding the `perf` section to the stats
//               report (implies --stats; degrades to an explicit
//               unavailable reason + rusage fallback where the kernel
//               denies the PMU)
//   --mem-stats
//               collect the per-structure memory breakdown (live tree,
//               sealed segments, pending run) and add the `memory`
//               section to the stats report (implies --stats); with
//               --sample-every the sampler's JSONL lines additionally
//               carry a live "mem" object
//   --profile[=PATH]
//               sampling self-profiler: fim-prof-v1 collapsed stacks to
//               stderr or PATH (flamegraph.pl-compatible)
//   --sample-every=MS
//               run a background metrics sampler: every MS milliseconds
//               (and once at shutdown) append one fim-statsline-v1 JSON
//               line — registry counters, tx/s throughput, peak RSS —
//               to --sample-out (default: stderr)
//   --sample-out=PATH
//               destination of the sampler's JSONL time-series
//   input       FIMI text file; "-" or absent: stdin (line-buffered —
//               suitable for live piping)
//   output      snapshot destination; "-" or absent: stdout
//
// After the input ends, the final snapshot is always printed in fim-mine
// format ("3 17 42 (57)" lines), so `fim-stream -s N input` on a finite
// file produces the same sets as `fim-mine -s N input` in landmark mode.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/timer.h"
#include "data/itemset.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "stream/stream_miner.h"
#include "tool_flags.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: fim-stream [-s minsupp] [--pane=N --window=W] "
      "[--query-every=N] [--checkpoint=PATH] [--checkpoint-every=N] "
      "[--resume=PATH] [--max-items=N] [-q] [--stats[=text|json]] "
      "[--stats-out=PATH] [--trace-out=PATH] [--perf-counters] "
      "[--mem-stats] [--profile[=PATH]] [--sample-every=MS] "
      "[--sample-out=PATH] [input [output]]\n");
}

struct Args {
  fim::Support min_support = 2;
  std::size_t pane_size = 0;
  std::size_t window_panes = 0;
  std::uint64_t query_every = 0;
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_path;
  std::string resume_path;
  std::size_t max_items = std::size_t{1} << 20;
  bool quiet = false;
  fim::tools::ObsFlags obs;
  std::uint64_t sample_every_ms = 0;
  std::string sample_out;
  std::string input = "-";
  std::string output = "-";
};

/// Fills `args` from the command line; returns -1 to proceed, otherwise
/// the process exit code.
int ParseArgs(int argc, char** argv, Args* args) {
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "-s") == 0) {
      args->min_support =
          static_cast<fim::Support>(fim::tools::ParseCount("-s", next_value()));
    } else if (std::strncmp(arg, "--pane=", 7) == 0) {
      args->pane_size =
          static_cast<std::size_t>(fim::tools::ParseCount("--pane", arg + 7));
    } else if (std::strncmp(arg, "--window=", 9) == 0) {
      args->window_panes =
          static_cast<std::size_t>(fim::tools::ParseCount("--window", arg + 9));
    } else if (std::strncmp(arg, "--query-every=", 14) == 0) {
      args->query_every =
          static_cast<std::uint64_t>(fim::tools::ParseCount("--query-every", arg + 14));
    } else if (std::strncmp(arg, "--checkpoint=", 13) == 0) {
      args->checkpoint_path = arg + 13;
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      args->checkpoint_every = static_cast<std::uint64_t>(
          fim::tools::ParseCount("--checkpoint-every", arg + 19));
    } else if (std::strncmp(arg, "--resume=", 9) == 0) {
      args->resume_path = arg + 9;
    } else if (std::strncmp(arg, "--max-items=", 12) == 0) {
      args->max_items =
          static_cast<std::size_t>(fim::tools::ParseCount("--max-items", arg + 12));
    } else if (std::strcmp(arg, "-q") == 0) {
      args->quiet = true;
    } else if (args->obs.Parse(arg)) {
      // one of --stats / --stats-out / --trace-out
    } else if (std::strncmp(arg, "--sample-every=", 15) == 0) {
      args->sample_every_ms = static_cast<std::uint64_t>(
          fim::tools::ParseCount("--sample-every", arg + 15));
    } else if (std::strncmp(arg, "--sample-out=", 13) == 0) {
      args->sample_out = arg + 13;
    } else if (std::strcmp(arg, "-h") == 0 ||
               std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else if (positional == 0) {
      args->input = arg;
      ++positional;
    } else if (positional == 1) {
      args->output = arg;
      ++positional;
    } else {
      Usage();
      return 2;
    }
  }
  if ((args->pane_size == 0) != (args->window_panes == 0)) {
    std::fprintf(stderr,
                 "error: --pane and --window must be given together\n");
    return 2;
  }
  if (args->min_support == 0 || args->max_items == 0) {
    std::fprintf(stderr, "error: -s and --max-items must be >= 1\n");
    return 2;
  }
  args->obs.Finish();
  if (!args->sample_out.empty() && args->sample_every_ms == 0) {
    std::fprintf(stderr, "error: --sample-out needs --sample-every=MS\n");
    return 2;
  }
  if (args->checkpoint_every > 0 && args->checkpoint_path.empty()) {
    std::fprintf(stderr,
                 "error: --checkpoint-every needs --checkpoint=PATH\n");
    return 2;
  }
  return -1;
}

int EmitStats(const Args& args, fim::StreamMiner& miner,
              const fim::obs::MetricRegistry& registry,
              const fim::obs::Trace* trace,
              const fim::obs::PerfReport* perf,
              const fim::obs::MemoryReport* memory, std::size_t num_sets,
              double wall_seconds, double cpu_seconds) {
  fim::obs::StatsReport report;
  report.tool = "fim-stream";
  report.algorithm =
      miner.options().pane_size > 0 ? "stream-window" : "stream-landmark";
  report.min_support = args.min_support;
  report.num_threads = 1;
  report.num_sets = num_sets;
  report.wall_seconds = wall_seconds;
  report.cpu_seconds = cpu_seconds;
  report.peak_rss_bytes = fim::PeakRss();
  report.registry = &registry;
  report.trace = trace;
  report.perf = perf;
  report.memory = memory;
  return fim::tools::EmitStatsReport(args.obs, report);
}

/// Parses one FIMI line into items. Returns false for blank/comment
/// lines; a negative token is reported as a parse error via `error`.
bool ParseLine(const std::string& line, std::vector<fim::ItemId>* items,
               bool* error) {
  items->clear();
  *error = false;
  const char* p = line.c_str();
  while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
  if (*p == '\0' || *p == '#') return false;
  while (*p != '\0') {
    char* end = nullptr;
    const long long value = std::strtoll(p, &end, 10);
    if (end == p || value < 0) {
      *error = true;
      return false;
    }
    items->push_back(static_cast<fim::ItemId>(value));
    p = end;
    while (*p == ' ' || *p == '\t' || *p == '\r') ++p;
  }
  return !items->empty();
}

int PrintSnapshot(fim::StreamMiner& miner, fim::Support min_support,
                  std::ostream& out, std::size_t* num_sets) {
  std::size_t count = 0;
  fim::Status status = miner.Query(
      min_support, [&](std::span<const fim::ItemId> items,
                       fim::Support support) {
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (i > 0) out << ' ';
          out << items[i];
        }
        out << " (" << support << ")\n";
        ++count;
      });
  if (!status.ok()) {
    std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
    return 1;
  }
  *num_sets = count;
  return 0;
}

int WriteCheckpoint(fim::StreamMiner& miner, const std::string& path) {
  // Write-then-rename, so a reader (or a crash) never sees a torn file.
  const std::string tmp = path + ".tmp";
  fim::Status status = miner.Checkpoint(tmp);
  if (status.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    status = fim::Status::IoError("cannot rename " + tmp + " to " + path);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fim;

  Args args;
  if (int rc = ParseArgs(argc, argv, &args); rc >= 0) return rc;

  WallTimer total;
  CpuTimer total_cpu;
  obs::MetricRegistry registry;
  obs::Trace trace_storage;
  obs::Trace* trace = args.obs.WantStats() ? &trace_storage : nullptr;
  std::unique_ptr<obs::Timeline> timeline;
  if (args.obs.WantTrace()) timeline = std::make_unique<obs::Timeline>();
  tools::PerfSession perf_session;
  perf_session.Start(args.obs, trace, timeline.get());
  tools::MemSession mem_session(args.obs);

  std::unique_ptr<StreamMiner> miner;
  if (!args.resume_path.empty()) {
    auto restored = StreamMiner::Restore(args.resume_path, &registry, trace,
                                         timeline.get());
    if (!restored.ok()) {
      std::fprintf(stderr, "error restoring %s: %s\n",
                   args.resume_path.c_str(),
                   restored.status().ToString().c_str());
      return 1;
    }
    miner = std::move(restored).value();
    if (!args.quiet) {
      std::fprintf(stderr, "fim-stream: resumed at tx %llu from %s\n",
                   static_cast<unsigned long long>(miner->NumTransactions()),
                   args.resume_path.c_str());
    }
  } else {
    StreamMinerOptions options;
    options.max_items = args.max_items;
    options.pane_size = args.pane_size;
    options.window_panes = args.window_panes;
    options.registry = &registry;
    options.trace = trace;
    options.timeline = timeline.get();
    miner = std::make_unique<StreamMiner>(options);
  }

  // Background metrics sampler (--sample-every): one fim-statsline-v1
  // JSON line per period plus a final one at Stop(). The sampler thread
  // records on its own timeline lane, never on the driver's.
  std::ofstream sample_file;
  std::unique_ptr<obs::MetricsSampler> sampler;
  if (args.sample_every_ms > 0) {
    std::ostream* sample_stream = &std::cerr;
    if (!args.sample_out.empty()) {
      sample_file.open(args.sample_out, std::ios::trunc);
      if (!sample_file) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     args.sample_out.c_str());
        return 1;
      }
      sample_stream = &sample_file;
    }
    obs::MetricsSamplerOptions sampler_options;
    sampler_options.period =
        std::chrono::milliseconds(args.sample_every_ms);
    sampler_options.registry = &registry;
    sampler_options.throughput_counter = "stream.transactions_ingested";
    sampler_options.lane =
        timeline != nullptr ? timeline->AddLane("sampler") : nullptr;
    if (mem_session.breakdown() != nullptr) {
      // Live heap timeline: each sample re-measures the miner (the walk
      // is O(segments) under the miner's mutex, cheap at sampler cadence).
      StreamMiner* sampled = miner.get();
      sampler_options.accounted_bytes = [sampled]() {
        return sampled->ApproxMemoryUsage().TotalBytes();
      };
    }
    sampler =
        std::make_unique<obs::MetricsSampler>(sampler_options, sample_stream);
  }

  std::ifstream file_in;
  std::istream* in = &std::cin;
  if (args.input != "-") {
    file_in.open(args.input);
    if (!file_in) {
      std::fprintf(stderr, "error: cannot open %s\n", args.input.c_str());
      return 1;
    }
    in = &file_in;
  }
  std::ofstream file_out;
  std::ostream* out = &std::cout;
  if (args.output != "-") {
    file_out.open(args.output, std::ios::trunc);
    if (!file_out) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   args.output.c_str());
      return 1;
    }
    out = &file_out;
  }

  std::string line;
  std::vector<ItemId> items;
  std::uint64_t line_number = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    bool parse_error = false;
    if (!ParseLine(line, &items, &parse_error)) {
      if (parse_error) {
        std::fprintf(stderr, "error: %s line %llu: not a FIMI transaction\n",
                     args.input.c_str(),
                     static_cast<unsigned long long>(line_number));
        return 1;
      }
      continue;  // blank or comment line
    }
    Status status = miner->AddTransaction(items);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s line %llu: %s\n", args.input.c_str(),
                   static_cast<unsigned long long>(line_number),
                   status.ToString().c_str());
      return 1;
    }
    const std::uint64_t ingested = miner->NumTransactions();
    if (args.query_every > 0 && ingested % args.query_every == 0) {
      // The header carries the absolute stream position, so snapshots of
      // a resumed run line up with the uninterrupted one.
      std::size_t num_sets = 0;
      std::ostringstream snapshot;
      if (int rc =
              PrintSnapshot(*miner, args.min_support, snapshot, &num_sets);
          rc != 0) {
        return rc;
      }
      *out << "# snapshot tx=" << ingested << " sets=" << num_sets << "\n"
           << snapshot.str();
      out->flush();
    }
    if (args.checkpoint_every > 0 && ingested % args.checkpoint_every == 0) {
      if (int rc = WriteCheckpoint(*miner, args.checkpoint_path); rc != 0) {
        return rc;
      }
    }
  }

  std::size_t num_sets = 0;
  if (args.query_every > 0) {
    *out << "# final tx=" << miner->NumTransactions() << "\n";
  }
  if (int rc = PrintSnapshot(*miner, args.min_support, *out, &num_sets);
      rc != 0) {
    return rc;
  }
  out->flush();
  if (!args.checkpoint_path.empty()) {
    if (int rc = WriteCheckpoint(*miner, args.checkpoint_path); rc != 0) {
      return rc;
    }
  }

  // Quiesce the sampler before exporting: its final sample lands in the
  // JSONL series and its lane stops receiving events, so the trace
  // snapshot below observes a fully written timeline. The measurement
  // layer (counters + profiler) stops here too, before any export
  // touches the timeline the profiler may still be writing to.
  if (sampler != nullptr) sampler->Stop();
  const obs::PerfReport* perf_report = perf_session.Finish();
  if (mem_session.breakdown() != nullptr) {
    mem_session.breakdown()->Record(miner->ApproxMemoryUsage());
  }
  const obs::MemoryReport* mem_report = mem_session.Finish();

  if (timeline != nullptr) {
    obs::TraceMeta meta;
    meta.tool = "fim-stream";
    meta.algorithm =
        miner->options().pane_size > 0 ? "stream-window" : "stream-landmark";
    if (int rc = tools::EmitChromeTrace(args.obs, *timeline, meta); rc != 0) {
      return rc;
    }
  }

  const StreamStats stream_stats = miner->Stats();
  if (!args.quiet) {
    std::fprintf(
        stderr,
        "fim-stream: %llu transactions (%llu weighted adds, %llu panes), "
        "%zu sets at smin %u, %zu nodes, %.3fs\n",
        static_cast<unsigned long long>(stream_stats.transactions_ingested),
        static_cast<unsigned long long>(stream_stats.weighted_additions),
        static_cast<unsigned long long>(stream_stats.panes_rotated),
        num_sets, args.min_support, miner->NodeCount(), total.Seconds());
  }
  if (args.obs.WantStats()) {
    if (int rc = EmitStats(args, *miner, registry, trace, perf_report,
                           mem_report, num_sets, total.Seconds(),
                           total_cpu.Seconds());
        rc != 0) {
      return rc;
    }
  }
  return perf_session.EmitProfile(args.obs);
}
