// fim-prof: work-inflation diagnosis over a fim-stats JSON report that
// carries a `perf` section (produced by e.g.
// `fim-mine --stats=json --stats-out=R.json --perf-counters -t N`).
// Renders the per-domain work table: how many intersection steps each
// IsTa shard / merge stage performed and what they cost in CPU seconds,
// hardware cycles and LLC misses. With --baseline — canonically the
// 1-thread run of the same workload — it quantifies parallel work
// inflation: the factor by which the sharded run's total intersection
// work exceeds the sequential run's (the merge reduction re-intersects
// sets the sequential run builds only once; see docs/PARALLELISM.md).
//
//   fim-prof [--baseline=REPORT.json] report.json
//   fim-prof --memory [--baseline=REPORT.json] report.json
//
// --memory switches to the memory-attribution report: the stats JSON
// must carry a `memory` section (from `--mem-stats --stats=json`), and
// the table shows the per-structure breakdown tree in MiB plus the
// allocation-domain table when the report was taken with a
// FIM_MEM_PROFILE build. With --baseline each structure row gains a
// delta column against the same structure path in the baseline report —
// the view the block-compression work is judged in: which structure's
// bytes moved, not just the opaque peak RSS.
//
// The work-inflation table goes to stdout:
//
//   domain              steps      cpu    cycles   cyc/step  llc/step
//   shard-0           1203456   0.412s   1.4e+09       1163      2.10
//   ...
//   merge-1-0          201234   0.080s   2.1e+08       1044      3.45
//   TOTAL             4812345   1.680s   5.9e+09       1226      2.51
//
// Hardware columns show "n/a" where the report was taken without PMU
// access (perf.available false, or a domain measured on a thread where
// the counter group could not open) — the steps and CPU columns come
// from software counters and are always present.
//
// Exit code 0 on success; 1 when a report cannot be read/parsed or has
// no perf section (no memory section with --memory); 2 on usage errors.

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/timer.h"
#include "obs/json.h"

namespace {

using fim::obs::JsonValue;

void Usage() {
  std::fprintf(stderr,
               "usage: fim-prof [--memory] [--baseline=REPORT.json] "
               "report.json\n");
}

/// One perf domain row as parsed back from the report. Hardware fields
/// are NaN when the report carries null for them.
struct DomainRow {
  std::string name;
  std::uint64_t work_steps = 0;
  double cpu_seconds = 0.0;
  double cycles = std::numeric_limits<double>::quiet_NaN();
  double instructions = std::numeric_limits<double>::quiet_NaN();
  double llc_misses = std::numeric_limits<double>::quiet_NaN();
};

/// Everything fim-prof needs from one report.
struct ProfReport {
  std::string tool;
  std::string algorithm;
  long long num_threads = 0;
  bool perf_available = false;
  std::string unavailable_reason;
  double total_cycles = std::numeric_limits<double>::quiet_NaN();
  double total_cpu_seconds = std::numeric_limits<double>::quiet_NaN();
  std::vector<DomainRow> domains;
};

/// Numeric member or NaN when absent/null — a null counter means "not
/// measured", which must stay distinguishable from a measured 0.
double NumberOr(const JsonValue& object, const char* key, double fallback) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind() != JsonValue::Kind::kNumber) {
    return fallback;
  }
  return value->AsNumber();
}

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

bool LoadReport(const std::string& path, ProfReport* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = fim::obs::ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error parsing %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  const JsonValue& doc = parsed.value();
  const JsonValue* schema = doc.is_object() ? doc.Find("schema") : nullptr;
  if (schema == nullptr || schema->AsString().rfind("fim-stats-", 0) != 0) {
    std::fprintf(stderr, "%s: not a fim-stats report (no \"schema\")\n",
                 path.c_str());
    return false;
  }
  const JsonValue* perf = doc.Find("perf");
  if (perf == nullptr || !perf->is_object()) {
    std::fprintf(stderr,
                 "%s: report has no perf section — rerun the tool with "
                 "--perf-counters --stats=json\n",
                 path.c_str());
    return false;
  }
  if (const JsonValue* tool = doc.Find("tool")) out->tool = tool->AsString();
  if (const JsonValue* algorithm = doc.Find("algorithm")) {
    out->algorithm = algorithm->AsString();
  }
  out->num_threads = static_cast<long long>(NumberOr(doc, "threads", 0.0));
  const JsonValue* available = perf->Find("available");
  out->perf_available = available != nullptr && available->AsBool();
  if (const JsonValue* reason = perf->Find("unavailable_reason")) {
    out->unavailable_reason = reason->AsString();
  }
  out->total_cpu_seconds = NumberOr(doc, "cpu_seconds", kNan);
  if (const JsonValue* counters = perf->Find("counters");
      counters != nullptr && counters->is_object()) {
    out->total_cycles = NumberOr(*counters, "cycles", kNan);
  }
  const JsonValue* domains = perf->Find("domains");
  if (domains != nullptr && domains->is_array()) {
    for (const JsonValue& entry : domains->AsArray()) {
      if (!entry.is_object()) continue;
      DomainRow row;
      if (const JsonValue* name = entry.Find("name")) {
        row.name = name->AsString();
      }
      row.work_steps =
          static_cast<std::uint64_t>(NumberOr(entry, "work_steps", 0.0));
      row.cpu_seconds = NumberOr(entry, "cpu_seconds", 0.0);
      row.cycles = NumberOr(entry, "cycles", kNan);
      row.instructions = NumberOr(entry, "instructions", kNan);
      // "cache_misses" is PERF_COUNT_HW_CACHE_MISSES = last-level misses.
      row.llc_misses = NumberOr(entry, "cache_misses", kNan);
      out->domains.push_back(std::move(row));
    }
  }
  // The collector records domains in completion order, which varies
  // across runs; sort shards before merges and numerically within each
  // group (length-then-lex orders shard-2 before shard-10) so the table
  // is stable and diffable.
  std::sort(out->domains.begin(), out->domains.end(),
            [](const DomainRow& a, const DomainRow& b) {
              const bool a_shard = a.name.rfind("shard-", 0) == 0;
              const bool b_shard = b.name.rfind("shard-", 0) == 0;
              if (a_shard != b_shard) return a_shard;
              if (a.name.size() != b.name.size()) {
                return a.name.size() < b.name.size();
              }
              return a.name < b.name;
            });
  return true;
}

/// "n/a"-aware cell formatters: a NaN renders as n/a, never as 0.
std::string Cell(double value, const char* format) {
  if (!std::isfinite(value)) return "n/a";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

std::string PerStep(double value, std::uint64_t steps) {
  if (!std::isfinite(value) || steps == 0) return "n/a";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f",
                value / static_cast<double>(steps));
  return buffer;
}

void PrintRow(const std::string& name, std::uint64_t steps, double cpu,
              double cycles, double llc) {
  std::printf("  %-18s %12" PRIu64 " %9.3fs %9s %10s %9s\n", name.c_str(),
              steps, cpu, Cell(cycles, "%.2e").c_str(),
              PerStep(cycles, steps).c_str(), PerStep(llc, steps).c_str());
}

/// Sum of a NaN-able column: NaN entries poison the sum into NaN only
/// when *every* entry is NaN; partially measured runs sum what exists.
double SumFinite(const std::vector<DomainRow>& rows,
                 double DomainRow::* field) {
  double sum = kNan;
  for (const DomainRow& row : rows) {
    const double value = row.*field;
    if (!std::isfinite(value)) continue;
    sum = std::isfinite(sum) ? sum + value : value;
  }
  return sum;
}

std::string Ratio(double current, double baseline) {
  if (!std::isfinite(current) || !std::isfinite(baseline) ||
      baseline <= 0.0) {
    return "n/a";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", current / baseline);
  return buffer;
}

// ---------------------------------------------------------------------
// --memory: per-structure memory report.

/// One breakdown-tree node flattened to a table row. `path` is the
/// slash-joined name chain ("prefix-trees/shard-0/node-columns") — the
/// key baseline rows are matched on, so a structure keeps its delta even
/// when sibling order differs between reports.
struct MemRow {
  std::string path;
  std::string name;
  int depth = 0;
  double self_bytes = 0.0;
  double total_bytes = 0.0;
};

struct MemDomainTableRow {
  std::string name;
  double live_bytes = 0.0;
  double peak_live_bytes = 0.0;
  double alloc_bytes = 0.0;
  std::uint64_t allocs = 0;
};

/// Everything --memory needs from one report's memory section.
struct MemReport {
  std::string tool;
  std::string algorithm;
  long long num_threads = 0;
  double accounted_bytes = 0.0;
  double high_water_bytes = 0.0;
  double peak_rss_bytes = kNan;  // null in the report -> NaN
  std::vector<MemRow> rows;
  bool has_profile = false;
  std::vector<MemDomainTableRow> domains;
};

void FlattenMemComponent(const JsonValue& component, const std::string& prefix,
                         int depth, std::vector<MemRow>* out) {
  if (!component.is_object()) return;
  MemRow row;
  if (const JsonValue* name = component.Find("name")) {
    row.name = name->AsString();
  }
  row.path = prefix.empty() ? row.name : prefix + "/" + row.name;
  row.depth = depth;
  row.self_bytes = NumberOr(component, "self_bytes", 0.0);
  row.total_bytes = NumberOr(component, "total_bytes", 0.0);
  const std::string path = row.path;
  out->push_back(std::move(row));
  const JsonValue* children = component.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const JsonValue& child : children->AsArray()) {
      FlattenMemComponent(child, path, depth + 1, out);
    }
  }
}

bool LoadMemReport(const std::string& path, MemReport* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto parsed = fim::obs::ParseJson(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "error parsing %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }
  const JsonValue& doc = parsed.value();
  const JsonValue* schema = doc.is_object() ? doc.Find("schema") : nullptr;
  if (schema == nullptr || schema->AsString().rfind("fim-stats-", 0) != 0) {
    std::fprintf(stderr, "%s: not a fim-stats report (no \"schema\")\n",
                 path.c_str());
    return false;
  }
  const JsonValue* memory = doc.Find("memory");
  if (memory == nullptr || !memory->is_object()) {
    std::fprintf(stderr,
                 "%s: report has no memory section — rerun the tool with "
                 "--mem-stats --stats=json\n",
                 path.c_str());
    return false;
  }
  if (const JsonValue* tool = doc.Find("tool")) out->tool = tool->AsString();
  if (const JsonValue* algorithm = doc.Find("algorithm")) {
    out->algorithm = algorithm->AsString();
  }
  out->num_threads = static_cast<long long>(NumberOr(doc, "threads", 0.0));
  out->accounted_bytes = NumberOr(*memory, "accounted_bytes", 0.0);
  out->high_water_bytes = NumberOr(*memory, "high_water_bytes", 0.0);
  out->peak_rss_bytes = NumberOr(*memory, "peak_rss_bytes", kNan);
  const JsonValue* components = memory->Find("components");
  if (components != nullptr && components->is_array()) {
    for (const JsonValue& component : components->AsArray()) {
      FlattenMemComponent(component, "", 0, &out->rows);
    }
  }
  const JsonValue* profile = memory->Find("profile");
  if (profile != nullptr && profile->is_object()) {
    out->has_profile = true;
    const JsonValue* domains = profile->Find("domains");
    if (domains != nullptr && domains->is_array()) {
      for (const JsonValue& entry : domains->AsArray()) {
        if (!entry.is_object()) continue;
        MemDomainTableRow row;
        if (const JsonValue* name = entry.Find("name")) {
          row.name = name->AsString();
        }
        row.live_bytes = NumberOr(entry, "live_bytes", 0.0);
        row.peak_live_bytes = NumberOr(entry, "peak_live_bytes", 0.0);
        row.alloc_bytes = NumberOr(entry, "alloc_bytes", 0.0);
        row.allocs = static_cast<std::uint64_t>(NumberOr(entry, "allocs", 0.0));
        out->domains.push_back(std::move(row));
      }
    }
  }
  return true;
}

std::string MibCell(double bytes) {
  if (!std::isfinite(bytes)) return "n/a";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.2f", fim::BytesToMib(bytes));
  return buffer;
}

/// Signed MiB delta cell; "=" when the structure did not move (< 1 KiB).
std::string DeltaCell(double current_bytes, double baseline_bytes) {
  const double delta = current_bytes - baseline_bytes;
  if (std::fabs(delta) < 1024.0) return "=";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%+.2f", fim::BytesToMib(delta));
  return buffer;
}

int RunMemoryReport(const std::string& report_path,
                    const std::string& baseline_path) {
  MemReport report;
  if (!LoadMemReport(report_path, &report)) return 1;
  MemReport baseline;
  const bool have_baseline = !baseline_path.empty();
  if (have_baseline && !LoadMemReport(baseline_path, &baseline)) return 1;
  std::map<std::string, double> baseline_totals;
  for (const MemRow& row : baseline.rows) {
    baseline_totals[row.path] = row.total_bytes;
  }

  std::printf("fim-prof --memory: %s / %s, %lld thread(s)\n",
              report.tool.empty() ? "?" : report.tool.c_str(),
              report.algorithm.empty() ? "?" : report.algorithm.c_str(),
              report.num_threads);
  std::printf("  accounted %s MiB, high water %s MiB, peak rss %s MiB\n",
              MibCell(report.accounted_bytes).c_str(),
              MibCell(report.high_water_bytes).c_str(),
              MibCell(report.peak_rss_bytes).c_str());
  if (std::isfinite(report.peak_rss_bytes) && report.peak_rss_bytes > 0.0) {
    std::printf("  rss coverage %.0f%%\n",
                100.0 * report.accounted_bytes / report.peak_rss_bytes);
  }

  if (report.rows.empty()) {
    std::printf("  no components recorded\n");
  } else if (have_baseline) {
    std::printf("  %-34s %10s %10s %10s\n", "structure", "self", "total",
                "delta");
  } else {
    std::printf("  %-34s %10s %10s\n", "structure", "self", "total");
  }
  for (const MemRow& row : report.rows) {
    const std::string label =
        std::string(static_cast<std::size_t>(row.depth) * 2, ' ') + row.name;
    if (have_baseline) {
      // A structure absent from the baseline shows its full size as the
      // delta; a baseline-only structure simply has no row here.
      const auto it = baseline_totals.find(row.path);
      const double base = it == baseline_totals.end() ? 0.0 : it->second;
      std::printf("  %-34s %10s %10s %10s\n", label.c_str(),
                  MibCell(row.self_bytes).c_str(),
                  MibCell(row.total_bytes).c_str(),
                  DeltaCell(row.total_bytes, base).c_str());
    } else {
      std::printf("  %-34s %10s %10s\n", label.c_str(),
                  MibCell(row.self_bytes).c_str(),
                  MibCell(row.total_bytes).c_str());
    }
  }

  if (report.has_profile && !report.domains.empty()) {
    std::printf("  %-18s %10s %10s %10s %12s\n", "alloc domain", "live",
                "peak", "cum", "allocs");
    for (const MemDomainTableRow& row : report.domains) {
      std::printf("  %-18s %10s %10s %10s %12" PRIu64 "\n", row.name.c_str(),
                  MibCell(row.live_bytes).c_str(),
                  MibCell(row.peak_live_bytes).c_str(),
                  MibCell(row.alloc_bytes).c_str(), row.allocs);
    }
  }

  if (have_baseline) {
    std::printf("\n  totals vs %s (%lld thread(s)):\n", baseline_path.c_str(),
                baseline.num_threads);
    std::printf("    accounted: %10s vs %10s MiB  -> %s\n",
                MibCell(report.accounted_bytes).c_str(),
                MibCell(baseline.accounted_bytes).c_str(),
                Ratio(report.accounted_bytes, baseline.accounted_bytes)
                    .c_str());
    std::printf("    peak rss:  %10s vs %10s MiB  -> %s\n",
                MibCell(report.peak_rss_bytes).c_str(),
                MibCell(baseline.peak_rss_bytes).c_str(),
                Ratio(report.peak_rss_bytes, baseline.peak_rss_bytes)
                    .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string report_path;
  bool memory_mode = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline_path = arg + 11;
    } else if (std::strcmp(arg, "--memory") == 0) {
      memory_mode = true;
    } else if (std::strcmp(arg, "-h") == 0 ||
               std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else if (positional == 0) {
      report_path = arg;
      ++positional;
    } else {
      Usage();
      return 2;
    }
  }
  if (report_path.empty()) {
    Usage();
    return 2;
  }
  if (memory_mode) return RunMemoryReport(report_path, baseline_path);

  ProfReport report;
  if (!LoadReport(report_path, &report)) return 1;

  std::printf("fim-prof: %s / %s, %lld thread(s)\n",
              report.tool.empty() ? "?" : report.tool.c_str(),
              report.algorithm.empty() ? "?" : report.algorithm.c_str(),
              report.num_threads);
  if (!report.perf_available) {
    std::printf("  hardware counters unavailable: %s\n",
                report.unavailable_reason.empty()
                    ? "(no reason recorded)"
                    : report.unavailable_reason.c_str());
    std::printf("  (steps and cpu below come from software counters)\n");
  }

  if (report.domains.empty()) {
    std::printf(
        "  no perf domains recorded — the run used an algorithm without\n"
        "  shard attribution, or predates --perf-counters\n");
    return 0;
  }

  std::printf("  %-18s %12s %10s %9s %10s %9s\n", "domain", "steps", "cpu",
              "cycles", "cyc/step", "llc/step");
  std::uint64_t total_steps = 0;
  double total_cpu = 0.0;
  for (const DomainRow& row : report.domains) {
    PrintRow(row.name, row.work_steps, row.cpu_seconds, row.cycles,
             row.llc_misses);
    total_steps += row.work_steps;
    total_cpu += row.cpu_seconds;
  }
  const double total_cycles = SumFinite(report.domains, &DomainRow::cycles);
  const double total_llc = SumFinite(report.domains, &DomainRow::llc_misses);
  PrintRow("TOTAL", total_steps, total_cpu, total_cycles, total_llc);

  if (!baseline_path.empty()) {
    ProfReport baseline;
    if (!LoadReport(baseline_path, &baseline)) return 1;
    std::uint64_t base_steps = 0;
    double base_cpu = 0.0;
    for (const DomainRow& row : baseline.domains) {
      base_steps += row.work_steps;
      base_cpu += row.cpu_seconds;
    }
    const double base_cycles =
        SumFinite(baseline.domains, &DomainRow::cycles);
    std::printf("\n  work inflation vs %s (%lld thread(s)):\n",
                baseline_path.c_str(), baseline.num_threads);
    std::printf("    steps:  %12" PRIu64 " vs %12" PRIu64 "  -> %s\n",
                total_steps, base_steps,
                Ratio(static_cast<double>(total_steps),
                      static_cast<double>(base_steps))
                    .c_str());
    std::printf("    cpu:    %11.3fs vs %11.3fs  -> %s\n", total_cpu,
                base_cpu, Ratio(total_cpu, base_cpu).c_str());
    std::printf("    cycles: %12s vs %12s  -> %s\n",
                Cell(total_cycles, "%.3e").c_str(),
                Cell(base_cycles, "%.3e").c_str(),
                Ratio(total_cycles, base_cycles).c_str());
  }
  return 0;
}
