#ifndef FIM_TOOLS_TOOL_FLAGS_H_
#define FIM_TOOLS_TOOL_FLAGS_H_

// Shared command-line plumbing of the fim-* tools: the observability
// flags behave identically everywhere they exist —
//
//   --stats[=text|json]   emit an execution-statistics report
//   --stats-out=PATH      write the stats report to PATH instead of
//                         stderr (implies --stats)
//   --trace-out=PATH      write a Chrome trace-event JSON timeline
//                         (fim-trace-v1; load in chrome://tracing or
//                         https://ui.perfetto.dev)
//   --perf-counters       measure hardware counters (cycles, IPC,
//                         cache/branch misses) and add the `perf`
//                         section to the stats report (implies --stats;
//                         degrades to an explicit unavailable reason +
//                         rusage fallback where the kernel denies the
//                         PMU — never fails the run)
//   --profile[=PATH]      sampling self-profiler: SIGPROF stacks folded
//                         to fim-prof-v1 collapsed format (flamegraph.pl
//                         compatible) on stderr or into PATH
//   --mem-stats           collect the per-structure memory breakdown and
//                         add the `memory` section to the stats report
//                         (implies --stats; the allocation-domain table
//                         appears only in FIM_MEM_PROFILE builds)
//
// Tools parse them through ObsFlags::Parse and run them through a
// PerfSession + EmitStatsReport / EmitChromeTrace so the behaviour
// cannot drift apart.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/timer.h"
#include "kernels/intersect.h"
#include "obs/export.h"
#include "obs/perf.h"
#include "obs/profiler.h"
#include "obs/timeline.h"

namespace fim::tools {

/// Parses a non-negative integer flag value with full error checking —
/// std::atoll reports neither overflow nor trailing garbage
/// (cert-err34-c), so "-s 10x" or "-s 99999999999999999999" would
/// silently mine with a wrong threshold. Prints a usage error naming
/// `flag` and exits with status 2 on any malformed value.
inline long long ParseCount(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr,
                 "error: %s expects a non-negative integer, got \"%s\"\n",
                 flag, text);
    std::exit(2);
  }
  return value;
}

enum class StatsFormat { kNone, kText, kJson };

struct ObsFlags {
  StatsFormat stats_format = StatsFormat::kNone;
  std::string stats_out;
  std::string trace_out;
  bool perf_counters = false;
  bool profile = false;
  std::string profile_out;  // empty = collapsed stacks to stderr
  bool mem_stats = false;

  bool WantStats() const { return stats_format != StatsFormat::kNone; }
  bool WantTrace() const { return !trace_out.empty(); }

  /// Consumes `arg` when it is one of the observability flags.
  bool Parse(const char* arg) {
    if (std::strcmp(arg, "--stats") == 0 ||
        std::strcmp(arg, "--stats=text") == 0) {
      stats_format = StatsFormat::kText;
      return true;
    }
    if (std::strcmp(arg, "--stats=json") == 0) {
      stats_format = StatsFormat::kJson;
      return true;
    }
    if (std::strncmp(arg, "--stats-out=", 12) == 0) {
      stats_out = arg + 12;
      return true;
    }
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
      return true;
    }
    if (std::strcmp(arg, "--perf-counters") == 0) {
      perf_counters = true;
      return true;
    }
    if (std::strcmp(arg, "--mem-stats") == 0) {
      mem_stats = true;
      return true;
    }
    if (std::strcmp(arg, "--profile") == 0) {
      profile = true;
      return true;
    }
    if (std::strncmp(arg, "--profile=", 10) == 0) {
      profile = true;
      profile_out = arg + 10;
      return true;
    }
    return false;
  }

  /// Call once after the argument loop: --stats-out alone implies
  /// --stats (text), and --perf-counters / --mem-stats imply --stats —
  /// their sections need a report to live in.
  void Finish() {
    if (stats_format == StatsFormat::kNone &&
        (!stats_out.empty() || perf_counters || mem_stats)) {
      stats_format = StatsFormat::kText;
    }
  }
};

/// Everything --perf-counters / --profile set up around one measured
/// run, shared by fim-mine / fim-stream / fim-verify:
///
///   PerfSession perf_session;
///   perf_session.Start(flags, trace, timeline);   // before the work
///   ... run ...
///   report.perf = perf_session.Finish();          // before EmitStats
///   exit_code |= perf_session.EmitProfile(flags); // after the work
///
/// Both features degrade gracefully (unavailable reason in the report /
/// a warning on stderr) and never fail the run by themselves; only an
/// unwritable --profile=PATH is an error at EmitProfile time.
class PerfSession {
 public:
  /// Opens counters and/or arms the profiler per `flags`. `trace`
  /// (nullable) gets the counter set attached so every span carries
  /// hardware deltas; `timeline` (nullable) gets a "profiler" lane so
  /// samples fold into the Chrome-trace export. Call before the
  /// measured work, on the driving thread.
  void Start(const ObsFlags& flags, obs::Trace* trace,
             obs::Timeline* timeline) {
    if (flags.perf_counters) {
      counters_ = std::make_unique<obs::PerfCounterSet>();
      counters_->Start();
      if (trace != nullptr) trace->AttachPerfCounters(counters_.get());
      collector_ = std::make_unique<obs::PerfDomainCollector>(
          counters_->available());
    }
    if (flags.profile) {
      obs::ProfilerOptions options;
      if (timeline != nullptr) options.lane = timeline->AddLane("profiler");
      profiler_ = obs::SamplingProfiler::Start(options, &profiler_error_);
      if (profiler_ == nullptr) {
        std::fprintf(stderr, "warning: profiling disabled: %s\n",
                     profiler_error_.c_str());
      }
    }
  }

  /// The per-domain collector for MinerOptions/IstaOptions::perf_domains
  /// (nullptr without --perf-counters).
  obs::PerfDomainCollector* domains() { return collector_.get(); }

  /// Stops measuring and assembles the `perf` stats section. Returns
  /// nullptr without --perf-counters; the pointer stays valid for the
  /// session's lifetime.
  const obs::PerfReport* Finish() {
    if (profiler_ != nullptr) profiler_->Stop();
    if (counters_ == nullptr) return nullptr;
    report_.availability = counters_->availability();
    if (counters_->available()) {
      counters_->Stop();
      report_.total = counters_->Read();
      report_.total_valid = true;
    }
    report_.kernel_tier = kernels::Active().name;
    report_.rusage = obs::ReadResourceUsage();
    report_.peak_rss = PeakRssBytes();
    if (collector_ != nullptr) report_.domains = collector_->Samples();
    return &report_;
  }

  /// Writes the collapsed-stack profile to stderr or
  /// `flags.profile_out`. When the profiler could not start, a
  /// requested output file still gets a header explaining why (so CI
  /// artifact steps find a file either way). Returns 0, or 1 when the
  /// file cannot be written.
  int EmitProfile(const ObsFlags& flags) {
    if (!flags.profile) return 0;
    if (profiler_ == nullptr) {
      if (flags.profile_out.empty()) return 0;  // warning already printed
      std::ofstream out(flags.profile_out, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "error: cannot open %s for writing\n",
                     flags.profile_out.c_str());
        return 1;
      }
      out << "# fim-prof-v1 samples=0 dropped=0 unavailable: "
          << profiler_error_ << '\n';
      return 0;
    }
    if (flags.profile_out.empty()) {
      std::fputs(profiler_->RenderCollapsed().c_str(), stderr);
      return 0;
    }
    const Status status = profiler_->WriteCollapsedFile(flags.profile_out);
    if (!status.ok()) {
      std::fprintf(stderr, "error writing profile %s: %s\n",
                   flags.profile_out.c_str(), status.ToString().c_str());
      return 1;
    }
    return 0;
  }

 private:
  std::unique_ptr<obs::PerfCounterSet> counters_;
  std::unique_ptr<obs::PerfDomainCollector> collector_;
  std::unique_ptr<obs::SamplingProfiler> profiler_;
  std::string profiler_error_;
  obs::PerfReport report_;
};

/// Everything --mem-stats sets up around one measured run, shared by
/// the tools the same way PerfSession is:
///
///   MemSession mem_session(flags);
///   options.memory = mem_session.breakdown();      // nullptr w/o flag
///   ... run ...
///   report.memory = mem_session.Finish();          // before EmitStats
class MemSession {
 public:
  explicit MemSession(const ObsFlags& flags) : enabled_(flags.mem_stats) {}

  /// The collector for MinerOptions::memory and friends (nullptr
  /// without --mem-stats — the run then skips all recording work).
  obs::MemoryBreakdown* breakdown() {
    return enabled_ ? &breakdown_ : nullptr;
  }

  /// Assembles the `memory` stats section (breakdown + RSS coverage +
  /// allocation-domain snapshot). Returns nullptr without --mem-stats;
  /// the pointer stays valid for the session's lifetime.
  const obs::MemoryReport* Finish() {
    if (!enabled_) return nullptr;
    report_ = obs::BuildMemoryReport(breakdown_);
    return &report_;
  }

 private:
  bool enabled_;
  obs::MemoryBreakdown breakdown_;
  obs::MemoryReport report_;
};

/// Renders `report` in the selected format and writes it to stderr or
/// `flags.stats_out`. Returns 0, or 1 when the output file cannot be
/// written.
inline int EmitStatsReport(const ObsFlags& flags,
                           const obs::StatsReport& report) {
  const std::string rendered = flags.stats_format == StatsFormat::kJson
                                   ? obs::RenderStatsJson(report)
                                   : obs::RenderStatsText(report);
  if (flags.stats_out.empty()) {
    std::fputs(rendered.c_str(), stderr);
    return 0;
  }
  std::ofstream stats_file(flags.stats_out, std::ios::trunc);
  if (!stats_file) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 flags.stats_out.c_str());
    return 1;
  }
  stats_file << rendered;
  return 0;
}

/// Writes the Chrome-trace export to `flags.trace_out`; a no-op without
/// --trace-out. Returns 0, or 1 when the file cannot be written.
inline int EmitChromeTrace(const ObsFlags& flags,
                           const obs::Timeline& timeline,
                           const obs::TraceMeta& meta) {
  if (flags.trace_out.empty()) return 0;
  const Status status =
      obs::WriteChromeTraceFile(timeline, meta, flags.trace_out);
  if (!status.ok()) {
    std::fprintf(stderr, "error writing trace %s: %s\n",
                 flags.trace_out.c_str(), status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace fim::tools

#endif  // FIM_TOOLS_TOOL_FLAGS_H_
