#ifndef FIM_TOOLS_TOOL_FLAGS_H_
#define FIM_TOOLS_TOOL_FLAGS_H_

// Shared command-line plumbing of the fim-* tools: the observability
// flags behave identically everywhere they exist —
//
//   --stats[=text|json]   emit an execution-statistics report
//   --stats-out=PATH      write the stats report to PATH instead of
//                         stderr (implies --stats)
//   --trace-out=PATH      write a Chrome trace-event JSON timeline
//                         (fim-trace-v1; load in chrome://tracing or
//                         https://ui.perfetto.dev)
//
// Tools parse them through ObsFlags::Parse and render through
// EmitStatsReport / EmitChromeTrace so the behaviour cannot drift apart.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/status.h"
#include "obs/export.h"
#include "obs/timeline.h"

namespace fim::tools {

/// Parses a non-negative integer flag value with full error checking —
/// std::atoll reports neither overflow nor trailing garbage
/// (cert-err34-c), so "-s 10x" or "-s 99999999999999999999" would
/// silently mine with a wrong threshold. Prints a usage error naming
/// `flag` and exits with status 2 on any malformed value.
inline long long ParseCount(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0' || value < 0) {
    std::fprintf(stderr,
                 "error: %s expects a non-negative integer, got \"%s\"\n",
                 flag, text);
    std::exit(2);
  }
  return value;
}

enum class StatsFormat { kNone, kText, kJson };

struct ObsFlags {
  StatsFormat stats_format = StatsFormat::kNone;
  std::string stats_out;
  std::string trace_out;

  bool WantStats() const { return stats_format != StatsFormat::kNone; }
  bool WantTrace() const { return !trace_out.empty(); }

  /// Consumes `arg` when it is one of the observability flags.
  bool Parse(const char* arg) {
    if (std::strcmp(arg, "--stats") == 0 ||
        std::strcmp(arg, "--stats=text") == 0) {
      stats_format = StatsFormat::kText;
      return true;
    }
    if (std::strcmp(arg, "--stats=json") == 0) {
      stats_format = StatsFormat::kJson;
      return true;
    }
    if (std::strncmp(arg, "--stats-out=", 12) == 0) {
      stats_out = arg + 12;
      return true;
    }
    if (std::strncmp(arg, "--trace-out=", 12) == 0) {
      trace_out = arg + 12;
      return true;
    }
    return false;
  }

  /// Call once after the argument loop: --stats-out alone implies
  /// --stats (text).
  void Finish() {
    if (stats_format == StatsFormat::kNone && !stats_out.empty()) {
      stats_format = StatsFormat::kText;
    }
  }
};

/// Renders `report` in the selected format and writes it to stderr or
/// `flags.stats_out`. Returns 0, or 1 when the output file cannot be
/// written.
inline int EmitStatsReport(const ObsFlags& flags,
                           const obs::StatsReport& report) {
  const std::string rendered = flags.stats_format == StatsFormat::kJson
                                   ? obs::RenderStatsJson(report)
                                   : obs::RenderStatsText(report);
  if (flags.stats_out.empty()) {
    std::fputs(rendered.c_str(), stderr);
    return 0;
  }
  std::ofstream stats_file(flags.stats_out, std::ios::trunc);
  if (!stats_file) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 flags.stats_out.c_str());
    return 1;
  }
  stats_file << rendered;
  return 0;
}

/// Writes the Chrome-trace export to `flags.trace_out`; a no-op without
/// --trace-out. Returns 0, or 1 when the file cannot be written.
inline int EmitChromeTrace(const ObsFlags& flags,
                           const obs::Timeline& timeline,
                           const obs::TraceMeta& meta) {
  if (flags.trace_out.empty()) return 0;
  const Status status =
      obs::WriteChromeTraceFile(timeline, meta, flags.trace_out);
  if (!status.ok()) {
    std::fprintf(stderr, "error writing trace %s: %s\n",
                 flags.trace_out.c_str(), status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace fim::tools

#endif  // FIM_TOOLS_TOOL_FLAGS_H_
